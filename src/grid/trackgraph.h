#pragma once
// The Hanan track graph: ground truth for rectilinear shortest paths.
//
// Classic fact (used by all the sequential comparators the paper cites,
// e.g. de Rezende–Lee–Wu [11] and Larson–Li [20]): an L1 shortest
// obstacle-avoiding path between two points can be chosen to run on the
// grid induced by the x/y coordinates of all obstacle edges plus the two
// endpoints. This module materializes that grid inside the container and
// runs Dijkstra on it. It is deliberately simple and independent of every
// paper-specific technique, which makes it the correctness oracle for the
// whole library; it is also the "repeated single-source/single-pair" bench
// baseline.

#include <optional>
#include <span>
#include <vector>

#include "geom/polygon.h"
#include "geom/rect.h"
#include "grid/compress.h"

namespace rsp {

class TrackGraph {
 public:
  // Builds the grid over the obstacle coordinates plus `extra` points
  // (query endpoints must be passed here so they become graph nodes).
  // `container`, if non-null, restricts nodes to the polygon; otherwise a
  // bounding box with a margin is used.
  TrackGraph(std::span<const Rect> obstacles,
             const RectilinearPolygon* container,
             std::span<const Point> extra = {});

  size_t num_nodes() const { return node_count_; }
  size_t num_edges() const { return edge_count_; }

  // Node id of a point, or -1 if it is not a free grid vertex.
  int node_at(const Point& p) const;
  Point point_of(int node) const;

  // Distances from s to all nodes. Unreachable entries are kInf. Runs the
  // vectorized fast-sweeping solver (see sweep_dist) and falls back to
  // Dijkstra on pathological scenes; both are exact, so results are always
  // the true shortest-path distances.
  std::vector<Length> single_source(const Point& s) const;

  // Reference Dijkstra from s — the oracle the sweep solver is tested
  // against (tests/trackgraph_test.cpp).
  std::vector<Length> single_source_dijkstra(const Point& s) const;

  // Shortest path length between two grid points (kInf if unreachable).
  Length shortest_length(const Point& s, const Point& t) const;

  // An actual shortest path as a polyline with collinear runs merged;
  // nullopt if unreachable.
  std::optional<std::vector<Point>> shortest_path(const Point& s,
                                                  const Point& t) const;

 private:
  struct Dij {
    std::vector<Length> dist;
    std::vector<int> pred;
  };
  Dij dijkstra(int src) const;
  // Fast-sweeping Gauss-Seidel SSSP over the raw grid: directional N/S/E/W
  // relaxation passes on contiguous row-major arrays until a full round
  // changes nothing (then the distances are the exact fixpoint). The N/S
  // passes are elementwise over a row — branch-free and SIMD-vectorized —
  // and the E/W passes are sequential prefix scans over contiguous memory.
  // A path with k monotone "staircase" segments settles within ~k rounds;
  // if the round cap trips first (adversarial spirals), falls back to
  // dijkstra(), so the result is exact either way.
  std::vector<Length> sweep_dist(int src) const;
  int grid_node(size_t xi, size_t yi) const {
    return node_id_[yi * xs_.size() + xi];
  }

  CoordIndex xs_, ys_;
  std::vector<int> node_id_;      // (yi * |xs| + xi) -> node id or -1
  std::vector<Point> node_pt_;    // node id -> point
  std::vector<int> cell_owner_;   // cell (yi * (|xs|-1) + xi) -> rect id/-1
  // CSR adjacency.
  std::vector<int> adj_start_;
  std::vector<std::pair<int, Length>> adj_;
  // Dense edge-weight grids for the sweep solver; kInf = blocked/absent
  // (safe in two-term sums: kInf + kInf < overflow, and a >= kInf candidate
  // never beats a real distance). hweight_[yi*(nx-1)+xi] is the edge
  // (xi,yi)-(xi+1,yi); vweight_[yi*nx+xi] is (xi,yi)-(xi,yi+1).
  std::vector<Length> hweight_;
  std::vector<Length> vweight_;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
};

}  // namespace rsp
