#include "grid/trackgraph.h"

#include <algorithm>
#include <queue>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rsp {

namespace {

// cur[i] = min(cur[i], src[i] + w[i]) over n entries; returns whether any
// entry improved. Branch-free so the scalar loop autovectorizes; the AVX2
// path spells out the 4-lane i64 min (compare + blend — there is no native
// epi64 min below AVX-512).
bool relax_row(Length* cur, const Length* src, const Length* w, size_t n) {
  static_assert(sizeof(Length) == 8, "sweep kernels assume 64-bit lengths");
  size_t i = 0;
  bool changed = false;
#if defined(__AVX2__)
  __m256i any = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i ww = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i cand = _mm256_add_epi64(s, ww);
    __m256i better = _mm256_cmpgt_epi64(c, cand);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + i),
                        _mm256_blendv_epi8(c, cand, better));
    any = _mm256_or_si256(any, better);
  }
  changed = !_mm256_testz_si256(any, any);
#endif
  for (; i < n; ++i) {
    const Length cand = src[i] + w[i];
    const bool better = cand < cur[i];
    cur[i] = better ? cand : cur[i];
    changed |= better;
  }
  return changed;
}

}  // namespace

TrackGraph::TrackGraph(std::span<const Rect> obstacles,
                       const RectilinearPolygon* container,
                       std::span<const Point> extra) {
  std::vector<Coord> xs, ys;
  for (const auto& r : obstacles) {
    xs.push_back(r.xmin);
    xs.push_back(r.xmax);
    ys.push_back(r.ymin);
    ys.push_back(r.ymax);
  }
  for (const auto& p : extra) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  RectilinearPolygon box;
  if (container == nullptr) {
    Rect bb = obstacles.empty()
                  ? Rect{0, 0, 1, 1}
                  : bounding_box(obstacles.begin(), obstacles.end());
    for (const auto& p : extra) {
      bb.xmin = std::min(bb.xmin, p.x);
      bb.ymin = std::min(bb.ymin, p.y);
      bb.xmax = std::max(bb.xmax, p.x);
      bb.ymax = std::max(bb.ymax, p.y);
    }
    box = RectilinearPolygon::rectangle(bb.expanded(1));
    container = &box;
  }
  for (const auto& v : container->vertices()) {
    xs.push_back(v.x);
    ys.push_back(v.y);
  }
  xs_ = CoordIndex(std::move(xs));
  ys_ = CoordIndex(std::move(ys));
  const size_t nx = xs_.size(), ny = ys_.size();
  RSP_CHECK(nx >= 2 && ny >= 2);

  // Cell ownership: each grid cell is covered by at most one obstacle
  // interior (obstacles are interior-disjoint and cells are atomic).
  cell_owner_.assign((nx - 1) * (ny - 1), -1);
  for (size_t r = 0; r < obstacles.size(); ++r) {
    const Rect& o = obstacles[r];
    if (o.width() == 0 || o.height() == 0) continue;  // no interior
    size_t x0 = xs_.index(o.xmin), x1 = xs_.index(o.xmax);
    size_t y0 = ys_.index(o.ymin), y1 = ys_.index(o.ymax);
    for (size_t yi = y0; yi < y1; ++yi) {
      for (size_t xi = x0; xi < x1; ++xi) {
        int& owner = cell_owner_[yi * (nx - 1) + xi];
        RSP_CHECK_MSG(owner == -1, "obstacle interiors overlap");
        owner = static_cast<int>(r);
      }
    }
  }

  // Nodes: grid vertices inside the container and not strictly inside an
  // obstacle (a vertex is strictly inside iff all four incident cells have
  // the same owner != -1).
  node_id_.assign(nx * ny, -1);
  auto cell = [&](size_t xi, size_t yi) -> int {
    if (xi >= nx - 1 || yi >= ny - 1) return -1;
    return cell_owner_[yi * (nx - 1) + xi];
  };
  for (size_t yi = 0; yi < ny; ++yi) {
    for (size_t xi = 0; xi < nx; ++xi) {
      Point p{xs_.value(xi), ys_.value(yi)};
      if (!container->contains(p)) continue;
      if (xi > 0 && yi > 0) {
        int a = cell(xi - 1, yi - 1), b = cell(xi, yi - 1),
            c = cell(xi - 1, yi), d = cell(xi, yi);
        if (a >= 0 && a == b && b == c && c == d) continue;  // interior
      }
      node_id_[yi * nx + xi] = static_cast<int>(node_pt_.size());
      node_pt_.push_back(p);
    }
  }
  node_count_ = node_pt_.size();

  // Edges. A horizontal edge between adjacent grid columns at row yi is
  // blocked iff the cells above and below it share an owner (then the open
  // segment lies strictly inside that obstacle); running along an obstacle
  // edge (different or absent owners on the two sides) is allowed. Edges
  // along the container boundary are fine because Bound(P) is clear.
  std::vector<std::vector<std::pair<int, Length>>> adj(node_count_);
  auto add_edge = [&](int u, int v, Length w) {
    adj[u].push_back({v, w});
    adj[v].push_back({u, w});
    ++edge_count_;
  };
  // The dense weight grids mirror the adjacency exactly: kInf where no edge
  // exists (blocked, or an endpoint is not a node), so the sweep solver's
  // relaxations are precisely the graph's edge relaxations.
  hweight_.assign(ny * (nx - 1), kInf);
  vweight_.assign((ny - 1) * nx, kInf);
  for (size_t yi = 0; yi < ny; ++yi) {
    for (size_t xi = 0; xi + 1 < nx; ++xi) {
      int u = grid_node(xi, yi), v = grid_node(xi + 1, yi);
      if (u < 0 || v < 0) continue;
      int below = yi > 0 ? cell(xi, yi - 1) : -1;
      int above = cell(xi, yi);
      if (below >= 0 && below == above) continue;
      // Also require the segment to stay inside the container: with a
      // rectilinearly convex container and both endpoints inside, the
      // segment is inside by definition.
      const Length w = xs_.value(xi + 1) - xs_.value(xi);
      add_edge(u, v, w);
      hweight_[yi * (nx - 1) + xi] = w;
    }
  }
  for (size_t xi = 0; xi < nx; ++xi) {
    for (size_t yi = 0; yi + 1 < ny; ++yi) {
      int u = grid_node(xi, yi), v = grid_node(xi, yi + 1);
      if (u < 0 || v < 0) continue;
      int left = xi > 0 ? cell(xi - 1, yi) : -1;
      int right = cell(xi, yi);
      if (left >= 0 && left == right) continue;
      const Length w = ys_.value(yi + 1) - ys_.value(yi);
      add_edge(u, v, w);
      vweight_[yi * nx + xi] = w;
    }
  }

  // CSR.
  adj_start_.assign(node_count_ + 1, 0);
  for (size_t u = 0; u < node_count_; ++u)
    adj_start_[u + 1] = adj_start_[u] + static_cast<int>(adj[u].size());
  adj_.resize(adj_start_[node_count_]);
  for (size_t u = 0; u < node_count_; ++u) {
    std::copy(adj[u].begin(), adj[u].end(), adj_.begin() + adj_start_[u]);
  }
}

int TrackGraph::node_at(const Point& p) const {
  if (!xs_.contains(p.x) || !ys_.contains(p.y)) return -1;
  return node_id_[ys_.index(p.y) * xs_.size() + xs_.index(p.x)];
}

Point TrackGraph::point_of(int node) const {
  RSP_CHECK(node >= 0 && node < static_cast<int>(node_count_));
  return node_pt_[node];
}

TrackGraph::Dij TrackGraph::dijkstra(int src) const {
  Dij d;
  d.dist.assign(node_count_, kInf);
  d.pred.assign(node_count_, -1);
  using Item = std::pair<Length, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  d.dist[src] = 0;
  pq.push({0, src});
  while (!pq.empty()) {
    auto [du, u] = pq.top();
    pq.pop();
    if (du != d.dist[u]) continue;
    for (int e = adj_start_[u]; e < adj_start_[u + 1]; ++e) {
      auto [v, w] = adj_[e];
      if (du + w < d.dist[v]) {
        d.dist[v] = du + w;
        d.pred[v] = u;
        pq.push({d.dist[v], v});
      }
    }
  }
  return d;
}

std::vector<Length> TrackGraph::sweep_dist(int src) const {
  const size_t nx = xs_.size(), ny = ys_.size();
  std::vector<Length> d(nx * ny, kInf);
  const Point sp = node_pt_[src];
  d[ys_.index(sp.y) * nx + xs_.index(sp.x)] = 0;

  // Non-node grid positions stay pinned at kInf: every incident weight is
  // kInf, so candidates through them are >= kInf and never win.
  constexpr size_t kMaxRounds = 12;
  bool changed = true;
  size_t rounds = 0;
  while (changed && rounds < kMaxRounds) {
    changed = false;
    ++rounds;
    // N: propagate up through rows, S: back down (vectorized elementwise).
    for (size_t yi = 1; yi < ny; ++yi) {
      changed |= relax_row(&d[yi * nx], &d[(yi - 1) * nx],
                           &vweight_[(yi - 1) * nx], nx);
    }
    for (size_t yi = ny - 1; yi > 0; --yi) {
      changed |= relax_row(&d[(yi - 1) * nx], &d[yi * nx],
                           &vweight_[(yi - 1) * nx], nx);
    }
    // E/W: per-row prefix scans (sequential dependence along the row).
    for (size_t yi = 0; yi < ny; ++yi) {
      Length* row = &d[yi * nx];
      const Length* hw = &hweight_[yi * (nx - 1)];
      for (size_t xi = 1; xi < nx; ++xi) {
        const Length cand = row[xi - 1] + hw[xi - 1];
        if (cand < row[xi]) {
          row[xi] = cand;
          changed = true;
        }
      }
      for (size_t xi = nx - 1; xi > 0; --xi) {
        const Length cand = row[xi] + hw[xi - 1];
        if (cand < row[xi - 1]) {
          row[xi - 1] = cand;
          changed = true;
        }
      }
    }
  }
  if (changed) return dijkstra(src).dist;  // cap tripped before fixpoint

  std::vector<Length> out(node_count_, kInf);
  for (size_t yi = 0; yi < ny; ++yi) {
    for (size_t xi = 0; xi < nx; ++xi) {
      const int id = node_id_[yi * nx + xi];
      if (id >= 0) out[id] = std::min(d[yi * nx + xi], kInf);
    }
  }
  return out;
}

std::vector<Length> TrackGraph::single_source(const Point& s) const {
  int u = node_at(s);
  RSP_CHECK_MSG(u >= 0, "source is not a free grid vertex");
  return sweep_dist(u);
}

std::vector<Length> TrackGraph::single_source_dijkstra(const Point& s) const {
  int u = node_at(s);
  RSP_CHECK_MSG(u >= 0, "source is not a free grid vertex");
  return dijkstra(u).dist;
}

Length TrackGraph::shortest_length(const Point& s, const Point& t) const {
  int u = node_at(s), v = node_at(t);
  RSP_CHECK_MSG(u >= 0 && v >= 0, "query point is not a free grid vertex");
  return sweep_dist(u)[v];
}

std::optional<std::vector<Point>> TrackGraph::shortest_path(
    const Point& s, const Point& t) const {
  int u = node_at(s), v = node_at(t);
  RSP_CHECK_MSG(u >= 0 && v >= 0, "query point is not a free grid vertex");
  Dij d = dijkstra(u);
  if (d.dist[v] >= kInf) return std::nullopt;
  std::vector<Point> rev;
  for (int w = v; w >= 0; w = d.pred[w]) rev.push_back(node_pt_[w]);
  std::reverse(rev.begin(), rev.end());
  // Merge collinear runs.
  std::vector<Point> out;
  for (const auto& p : rev) {
    while (out.size() >= 2) {
      const Point& a = out[out.size() - 2];
      const Point& b = out.back();
      if ((a.x == b.x && b.x == p.x) || (a.y == b.y && b.y == p.y)) {
        out.pop_back();
      } else {
        break;
      }
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace rsp
