#pragma once
// Coordinate compression.

#include <algorithm>
#include <vector>

#include "common.h"

namespace rsp {

class CoordIndex {
 public:
  CoordIndex() = default;
  explicit CoordIndex(std::vector<Coord> values) : vals_(std::move(values)) {
    std::sort(vals_.begin(), vals_.end());
    vals_.erase(std::unique(vals_.begin(), vals_.end()), vals_.end());
  }

  size_t size() const { return vals_.size(); }
  Coord value(size_t i) const { return vals_[i]; }
  const std::vector<Coord>& values() const { return vals_; }

  bool contains(Coord v) const {
    auto it = std::lower_bound(vals_.begin(), vals_.end(), v);
    return it != vals_.end() && *it == v;
  }

  // Index of v; v must be present.
  size_t index(Coord v) const {
    auto it = std::lower_bound(vals_.begin(), vals_.end(), v);
    RSP_CHECK_MSG(it != vals_.end() && *it == v, "coordinate not compressed");
    return static_cast<size_t>(it - vals_.begin());
  }

  // Largest index with value <= v; v must be >= the smallest value.
  size_t floor_index(Coord v) const {
    auto it = std::upper_bound(vals_.begin(), vals_.end(), v);
    RSP_CHECK(it != vals_.begin());
    return static_cast<size_t>(it - vals_.begin()) - 1;
  }

 private:
  std::vector<Coord> vals_;
};

}  // namespace rsp
