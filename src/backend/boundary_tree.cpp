#include "backend/boundary_tree.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/region.h"
#include "grid/trackgraph.h"

namespace rsp {

namespace {

Length polyline_length(const std::vector<Point>& pts) {
  Length total = 0;
  for (size_t i = 1; i < pts.size(); ++i) total += dist1(pts[i - 1], pts[i]);
  return total;
}

// Appends `piece` to `out`. The first point of `piece` must equal the
// current endpoint; the shared joint is emitted once.
void append_polyline(std::vector<Point>& out, const std::vector<Point>& piece) {
  RSP_CHECK_MSG(!out.empty() && !piece.empty() && out.back() == piece.front(),
                "path pieces do not share a joint");
  out.insert(out.end(), piece.begin() + 1, piece.end());
}

// Exit point of the directed axis-parallel segment cur -> nxt, where cur is
// inside the convex region and nxt outside it.
Point clip_exit(const RectilinearPolygon& r, const Point& cur,
                const Point& nxt) {
  if (cur.x == nxt.x) {
    auto [lo, hi] = r.y_range_at(cur.x);
    return {cur.x, nxt.y > hi ? hi : lo};
  }
  auto [lo, hi] = r.x_range_at(cur.y);
  return {nxt.x > hi ? hi : lo, cur.y};
}

// First point of the directed axis-parallel segment from -> to that lies in
// the convex region, if any (convexity makes the intersection contiguous).
std::optional<Point> first_in_region(const RectilinearPolygon& r,
                                     const Point& from, const Point& to) {
  const Rect& bb = r.bbox();
  if (from.x == to.x) {
    if (from.x < bb.xmin || from.x > bb.xmax) return std::nullopt;
    auto [lo, hi] = r.y_range_at(from.x);
    Coord slo = std::min(from.y, to.y), shi = std::max(from.y, to.y);
    Coord ilo = std::max(slo, lo), ihi = std::min(shi, hi);
    if (ilo > ihi) return std::nullopt;
    return Point{from.x, from.y <= to.y ? ilo : ihi};
  }
  if (from.y < bb.ymin || from.y > bb.ymax) return std::nullopt;
  auto [lo, hi] = r.x_range_at(from.y);
  Coord slo = std::min(from.x, to.x), shi = std::max(from.x, to.x);
  Coord ilo = std::max(slo, lo), ihi = std::min(shi, hi);
  if (ilo > ihi) return std::nullopt;
  return Point{from.x <= to.x ? ilo : ihi, from.y};
}

// Boundary polyline of `r` from a to b, walking CCW (vertex order).
std::vector<Point> boundary_arc_ccw(const RectilinearPolygon& r,
                                    const Point& a, const Point& b) {
  auto [ea, oa] = arc_position(r, a);
  auto [eb, ob] = arc_position(r, b);
  std::vector<Point> out{a};
  if (ea == eb && oa <= ob) {
    out.push_back(b);
  } else {
    const size_t nv = r.size();
    size_t e = ea;
    do {
      e = (e + 1) % nv;
      out.push_back(r.vertices()[e]);
    } while (e != eb);
    out.push_back(b);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Point> boundary_arc_cw(const RectilinearPolygon& r, const Point& a,
                                   const Point& b) {
  std::vector<Point> out = boundary_arc_ccw(r, b, a);
  std::reverse(out.begin(), out.end());
  return out;
}

// Collapses duplicate joints and merges same-direction collinear runs.
// Exact shortest paths never backtrack, so monotone merging is lossless.
std::vector<Point> canonicalize(std::vector<Point> pts) {
  std::vector<Point> out;
  out.reserve(pts.size());
  auto extends = [](const Point& a, const Point& b, const Point& c) {
    if (a.x == b.x && b.x == c.x) return (b.y > a.y) == (c.y > b.y);
    if (a.y == b.y && b.y == c.y) return (b.x > a.x) == (c.x > b.x);
    return false;
  };
  for (const Point& p : pts) {
    if (!out.empty() && out.back() == p) continue;
    while (out.size() >= 2 && extends(out[out.size() - 2], out.back(), p)) {
      out.pop_back();
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace

// Hub access point of the source child at some ancestor's separator: either
// one of the child's Mid points (cost = lifted distance to it) or a §6.4
// escape candidate (free axis ray from the query point, cost = its length).
struct BoundaryTreeSP::HubSrc {
  Point pt;
  Length cost = kInf;
  bool is_ray = false;
  uint32_t child_idx = 0;  // !is_ray: pt as an index into the child's B
};

struct BoundaryTreeSP::Lift {
  // Argmin provenance of one lifted distance entry, for path replay.
  struct Prov {
    enum Kind : uint8_t { kNone, kDirect, kHub };
    Kind kind = kNone;
    uint32_t direct = 0;     // kDirect: same point as a child B index
    uint32_t port = 0;       // kHub: port index in the node
    uint32_t mid = 0;        // kHub: z = ports[port].mids[mid]
    uint32_t tgt_child = 0;  // kHub, real port: target as child B index
    Point src_pt;            // kHub: y, the hub access point used
    bool src_is_ray = false;
    uint32_t src_child = 0;  // kHub, !ray: y as a source-child B index
  };
  Point p;
  std::vector<uint32_t> chain;            // node ids, start .. leaf
  std::vector<std::vector<Length>> dvec;  // per depth; [0] empty if skipped
  std::vector<std::vector<Prov>> prov;
};

// The combine decision for one (s, t) pair: either the same-leaf base case
// or the best hub pair (y, z) at common-ancestor depth `depth`.
struct BoundaryTreeSP::Plan {
  Length best = kInf;
  bool via_base = false;
  size_t depth = 0;
  HubSrc y, z;
};

BoundaryTreeSP::BoundaryTreeSP(Scene scene, size_t num_threads)
    : scene_(std::move(scene)) {
  DncOptions opt;
  opt.retain_tree = true;
  opt.num_threads = num_threads;
  DncResult res = build_boundary_structure(scene_, opt);
  stats_ = res.stats;
  tree_ = std::move(res.tree);
  init();
}

BoundaryTreeSP::BoundaryTreeSP(Scene scene, std::shared_ptr<const DncTree> tree)
    : scene_(std::move(scene)), tree_(std::move(tree)) {
  init();
}

void BoundaryTreeSP::init() {
  RSP_CHECK_MSG(tree_ != nullptr && !tree_->nodes.empty(),
                "boundary tree: empty recursion tree");
  shooter_ = std::make_unique<RayShooter>(scene_);
  stairs_.resize(tree_->nodes.size());
  for (size_t i = 0; i < tree_->nodes.size(); ++i) {
    const DncNode& n = tree_->nodes[i];
    if (n.children.empty()) continue;
    RSP_CHECK_MSG(n.sep.size() >= 2, "internal node without a separator");
    stairs_[i] = Staircase::from_chain(
        n.sep,
        n.sep_increasing ? StairOrient::Increasing : StairOrient::Decreasing);
  }
}

size_t BoundaryTreeSP::memory_bytes() const {
  size_t total = tree_->memory_bytes();
  total += stairs_.capacity() * sizeof(Staircase);
  for (const Staircase& s : stairs_) {
    total += s.points().capacity() * sizeof(Point);
  }
  total += scene_.obstacles().size() * sizeof(Rect) +
           scene_.container().vertices().size() * sizeof(Point);
  // The ray shooter keeps two sorted interval structures over the obstacle
  // edges; account for them proportionally rather than reaching inside.
  total += scene_.num_obstacles() * 4 * sizeof(Point);
  return total;
}

std::vector<uint32_t> BoundaryTreeSP::locate_chain(uint32_t start,
                                                   const Point& p) const {
  RSP_CHECK_MSG(node(start).region.contains(p),
                "boundary tree: point outside the region");
  std::vector<uint32_t> chain{start};
  while (!node(chain.back()).children.empty()) {
    const DncNode& q = node(chain.back());
    bool found = false;
    for (uint32_t cid : q.children) {
      if (node(cid).region.contains(p)) {
        chain.push_back(cid);
        found = true;
        break;
      }
    }
    RSP_CHECK_MSG(found, "boundary tree: point location failed");
  }
  return chain;
}

Length BoundaryTreeSP::leaf_length(const DncNode& leaf, const Point& a,
                                   const Point& b) const {
  std::vector<Point> extra{a, b};
  TrackGraph g(leaf.rects, &leaf.region, extra);
  return g.shortest_length(a, b);
}

std::vector<Point> BoundaryTreeSP::leaf_path(const DncNode& leaf,
                                             const Point& a,
                                             const Point& b) const {
  if (a == b) return {a};
  std::vector<Point> extra{a, b};
  TrackGraph g(leaf.rects, &leaf.region, extra);
  std::optional<std::vector<Point>> p = g.shortest_path(a, b);
  RSP_CHECK_MSG(p.has_value(), "boundary tree: leaf pair unreachable");
  return *std::move(p);
}

BoundaryTreeSP::Lift BoundaryTreeSP::lift(const Point& p, uint32_t start,
                                          bool include_start_level) const {
  Lift lf;
  lf.p = p;
  lf.chain = locate_chain(start, p);
  const size_t depth = lf.chain.size();
  lf.dvec.resize(depth);
  lf.prov.resize(depth);

  // Base case: one leaf-local Dijkstra reaches every B point of the leaf.
  const DncNode& leaf = node(lf.chain.back());
  {
    std::vector<Point> extra = leaf.b;
    extra.push_back(p);
    TrackGraph g(leaf.rects, &leaf.region, extra);
    std::vector<Length> dist = g.single_source(p);
    std::vector<Length>& dl = lf.dvec[depth - 1];
    dl.resize(leaf.b.size(), kInf);
    lf.prov[depth - 1].assign(leaf.b.size(), Lift::Prov{});
    for (size_t j = 0; j < leaf.b.size(); ++j) {
      int nd = g.node_at(leaf.b[j]);
      RSP_CHECK_MSG(nd >= 0, "leaf B point is not a track-graph vertex");
      dl[j] = dist[static_cast<size_t>(nd)];
    }
  }
  const size_t stop = include_start_level ? 0 : 1;
  for (size_t i = depth - 1; i > stop; --i) lift_level(lf, i - 1);
  return lf;
}

std::vector<BoundaryTreeSP::HubSrc> BoundaryTreeSP::hub_sources(
    const Lift& lf, size_t i) const {
  const DncNode& q = node(lf.chain[i]);
  const uint32_t child_id = lf.chain[i + 1];
  const std::vector<Length>& dc = lf.dvec[i + 1];

  int32_t ord = -1;
  for (size_t c = 0; c < q.children.size(); ++c) {
    if (q.children[c] == child_id) {
      ord = static_cast<int32_t>(c);
      break;
    }
  }
  RSP_CHECK_MSG(ord >= 0, "lift chain child not under its parent");

  std::vector<HubSrc> out;
  // The child's own Mid points, priced by the lifted distance vector.
  for (const DncPort& p : q.ports) {
    if (p.child != ord) continue;
    for (size_t k = 0; k < p.mids.size(); ++k) {
      out.push_back({p.mids[k], dc[p.mid_child[k]], false, p.mid_child[k]});
    }
  }
  // §6.4 escape candidates: the free axis rays from the query point itself
  // to this ancestor's separator, staying inside the (convex) child region.
  // These cover the crossing deformations that pivot on the query point,
  // which the child's Mid set (built from obstacle vertices) does not.
  const RectilinearPolygon& creg = node(child_id).region;
  const Staircase& st = stairs_[lf.chain[i]];
  for (Dir d : {Dir::North, Dir::South, Dir::East, Dir::West}) {
    if (std::optional<Point> w =
            separator_crossing(st, creg, *shooter_, lf.p, d)) {
      out.push_back({*w, dist1(lf.p, *w), true, 0});
    }
  }
  return out;
}

void BoundaryTreeSP::lift_level(Lift& lf, size_t i) const {
  const DncNode& q = node(lf.chain[i]);
  const uint32_t child_id = lf.chain[i + 1];
  const std::vector<Length>& dc = lf.dvec[i + 1];
  std::vector<Length>& dq = lf.dvec[i];
  std::vector<Lift::Prov>& pq = lf.prov[i];
  dq.assign(q.b.size(), kInf);
  pq.assign(q.b.size(), Lift::Prov{});

  int32_t ord = -1;
  for (size_t c = 0; c < q.children.size(); ++c) {
    if (q.children[c] == child_id) {
      ord = static_cast<int32_t>(c);
      break;
    }
  }
  RSP_CHECK_MSG(ord >= 0, "lift chain child not under its parent");

  // Direct: B(Q) points lying on the source child's own boundary keep
  // their within-child distance.
  for (const DncPort& p : q.ports) {
    if (p.child != ord) continue;
    for (size_t a = 0; a < p.rows.size(); ++a) {
      const Length v = dc[p.child_rows[a]];
      if (v < dq[p.rows[a]]) {
        dq[p.rows[a]] = v;
        Lift::Prov pr;
        pr.kind = Lift::Prov::kDirect;
        pr.direct = p.child_rows[a];
        pq[p.rows[a]] = pr;
      }
    }
  }

  // Hub: cross the separator (or re-enter through it) — for each port, walk
  // its Mid points z, price them from the best hub source y, then fan out
  // through the retained reach matrix. This replays the conquer's
  // (min,+) product one vector at a time.
  const std::vector<HubSrc> srcs = hub_sources(lf, i);
  if (srcs.empty()) return;
  for (size_t pi = 0; pi < q.ports.size(); ++pi) {
    const DncPort& p = q.ports[pi];
    if (p.rows.empty() || p.mids.empty() || p.reach.empty()) continue;
    // Mid points are the reach matrix's columns in order, so the
    // compressed matrix streams its columns alongside the k loop.
    PortMatrix::ColumnScan reach_col(p.reach);
    for (size_t k = 0; k < p.mids.size(); ++k) {
      if (k > 0) reach_col.advance();
      Length g = kInf;
      const HubSrc* gy = nullptr;
      for (const HubSrc& y : srcs) {
        const Length v = add_len(y.cost, dist1(y.pt, p.mids[k]));
        if (v < g) {
          g = v;
          gy = &y;
        }
      }
      if (g >= kInf) continue;
      const Length* reach_k = reach_col.data();
      for (size_t a = 0; a < p.rows.size(); ++a) {
        const Length v = add_len(g, reach_k[a]);
        if (v < dq[p.rows[a]]) {
          dq[p.rows[a]] = v;
          Lift::Prov pr;
          pr.kind = Lift::Prov::kHub;
          pr.port = static_cast<uint32_t>(pi);
          pr.mid = static_cast<uint32_t>(k);
          pr.tgt_child = p.child >= 0 ? p.child_rows[a] : 0;
          pr.src_pt = gy->pt;
          pr.src_is_ray = gy->is_ray;
          pr.src_child = gy->child_idx;
          pq[p.rows[a]] = pr;
        }
      }
    }
  }
}

BoundaryTreeSP::Plan BoundaryTreeSP::make_plan(const Point& s, const Point& t,
                                               const Lift& ls,
                                               const Lift& lt) const {
  Plan plan;
  size_t common = 0;
  while (common < ls.chain.size() && common < lt.chain.size() &&
         ls.chain[common] == lt.chain[common]) {
    ++common;
  }
  // A chain cannot be a proper prefix of the other (leaves are childless),
  // so full-prefix means the two points share a leaf.
  const bool same_leaf =
      common == ls.chain.size() && common == lt.chain.size();
  if (same_leaf) {
    plan.best = leaf_length(node(ls.chain.back()), s, t);
    plan.via_base = true;
  }
  // Hub candidates exist at every common ancestor that still has a deeper
  // chain entry on both sides.
  const size_t hub_top = same_leaf ? common - 1 : common;
  for (size_t i = 0; i < hub_top; ++i) {
    const std::vector<HubSrc> ys = hub_sources(ls, i);
    const std::vector<HubSrc> zs = hub_sources(lt, i);
    for (const HubSrc& y : ys) {
      for (const HubSrc& z : zs) {
        // Both y and z sit on this ancestor's separator: the separator is a
        // monotone staircase inside the region, so their geodesic distance
        // is plain L1.
        const Length v = add_len(y.cost, add_len(dist1(y.pt, z.pt), z.cost));
        if (v < plan.best) {
          plan.best = v;
          plan.via_base = false;
          plan.depth = i;
          plan.y = y;
          plan.z = z;
        }
      }
    }
  }
  return plan;
}

Length BoundaryTreeSP::length(const Point& s, const Point& t) const {
  if (s == t) return 0;
  const Lift ls = lift(s, 0, false);
  const Lift lt = lift(t, 0, false);
  return make_plan(s, t, ls, lt).best;
}

std::vector<Point> BoundaryTreeSP::sep_geodesic(uint32_t node_id,
                                                const Point& y,
                                                const Point& z) const {
  const DncNode& q = node(node_id);
  const Staircase& st = stairs_[node_id];
  if (y == z) return {y};

  // Walk the staircase bend-to-bend between y and z (staircase points are
  // ascending in x; for equal x the orientation fixes the y order).
  const std::vector<Point>& pts = st.points();
  auto before = [&st](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    return st.increasing() ? a.y < b.y : a.y > b.y;
  };
  const Point* lo = &y;
  const Point* hi = &z;
  bool reversed = false;
  if (before(*hi, *lo)) {
    std::swap(lo, hi);
    reversed = true;
  }
  std::vector<Point> walk{*lo};
  for (const Point& p : pts) {
    if (before(*lo, p) && before(p, *hi)) walk.push_back(p);
  }
  walk.push_back(*hi);

  // The staircase may leave the region (it is clipped per child at build
  // time, but here it must connect two arbitrary points on it). Patch every
  // excursion with the boundary arc between the exit and re-entry points —
  // the region is convex, so one of the two arcs is monotone and exactly as
  // long as the L1 distance it replaces.
  std::vector<Point> out{walk.front()};
  size_t i = 1;
  while (i < walk.size()) {
    const Point cur = out.back();
    const Point nxt = walk[i];
    if (q.region.contains(nxt)) {
      out.push_back(nxt);
      ++i;
      continue;
    }
    const Point e1 = clip_exit(q.region, cur, nxt);
    // Scan forward for the first walk segment that re-enters the region.
    // (The rest of the exiting segment is outside: the intersection of a
    // straight segment with a convex region is contiguous.)
    std::optional<Point> e2;
    size_t j = i + 1;
    Point from = nxt;
    for (; j < walk.size(); ++j) {
      const Point to = walk[j];
      if (std::optional<Point> r = first_in_region(q.region, from, to)) {
        e2 = *r;
        break;
      }
      from = to;
    }
    RSP_CHECK_MSG(e2.has_value(), "separator never re-enters the region");
    const Length want = dist1(e1, *e2);
    std::vector<Point> arc = boundary_arc_ccw(q.region, e1, *e2);
    if (polyline_length(arc) != want) {
      arc = boundary_arc_cw(q.region, e1, *e2);
      RSP_CHECK_MSG(polyline_length(arc) == want,
                    "no monotone boundary arc for separator excursion");
    }
    if (out.back() != e1) out.push_back(e1);
    if (arc.size() > 1) append_polyline(out, arc);
    // Resume at walk[j]: the main loop re-checks it against the region (the
    // re-entered segment may exit again before reaching it).
    i = j;
  }
  if (reversed) std::reverse(out.begin(), out.end());
  RSP_CHECK_MSG(polyline_length(out) == dist1(y, z),
                "separator geodesic is not L1-tight");
  return out;
}

std::vector<Point> BoundaryTreeSP::b_to_b_path(uint32_t node_id,
                                               uint32_t from_bi,
                                               uint32_t to_bi) const {
  const DncNode& n = node(node_id);
  const Point a = n.b[from_bi];
  const Point b = n.b[to_bi];
  if (a == b) return {a};
  if (n.children.empty()) return leaf_path(n, a, b);
  const Lift lf = lift(a, node_id, /*include_start_level=*/true);
  RSP_CHECK(lf.dvec[0].size() == n.b.size());
  return reconstruct_to_b(lf, 0, to_bi);
}

std::vector<Point> BoundaryTreeSP::reconstruct_to_b(const Lift& lf, size_t i,
                                                    uint32_t bi) const {
  const DncNode& q = node(lf.chain[i]);
  if (i + 1 == lf.chain.size()) return leaf_path(q, lf.p, q.b[bi]);

  const Lift::Prov& pv = lf.prov[i][bi];
  RSP_CHECK_MSG(pv.kind != Lift::Prov::kNone,
                "no provenance for a reachable boundary point");
  if (pv.kind == Lift::Prov::kDirect) {
    return reconstruct_to_b(lf, i + 1, pv.direct);
  }
  const DncPort& p = q.ports[pv.port];
  const Point z = p.mids[pv.mid];
  std::vector<Point> out;
  if (pv.src_is_ray) {
    out.push_back(lf.p);
    if (pv.src_pt != lf.p) out.push_back(pv.src_pt);
  } else {
    out = reconstruct_to_b(lf, i + 1, pv.src_child);
  }
  append_polyline(out, sep_geodesic(lf.chain[i], pv.src_pt, z));
  if (p.child < 0) {
    // Virtual separator port: the target itself lies on the separator.
    append_polyline(out, sep_geodesic(lf.chain[i], z, q.b[bi]));
  } else {
    append_polyline(
        out, b_to_b_path(q.children[p.child], p.mid_child[pv.mid],
                         pv.tgt_child));
  }
  return out;
}

std::vector<Point> BoundaryTreeSP::path(const Point& s, const Point& t) const {
  if (s == t) return {s};
  const Lift ls = lift(s, 0, false);
  const Lift lt = lift(t, 0, false);
  const Plan plan = make_plan(s, t, ls, lt);
  RSP_CHECK_MSG(plan.best < kInf, "boundary tree: pair is unreachable");

  std::vector<Point> out;
  if (plan.via_base) {
    out = leaf_path(node(ls.chain.back()), s, t);
  } else {
    const size_t i = plan.depth;
    if (plan.y.is_ray) {
      out.push_back(s);
      if (plan.y.pt != s) out.push_back(plan.y.pt);
    } else {
      out = reconstruct_to_b(ls, i + 1, plan.y.child_idx);
    }
    append_polyline(out, sep_geodesic(ls.chain[i], plan.y.pt, plan.z.pt));
    std::vector<Point> leg;
    if (plan.z.is_ray) {
      leg.push_back(t);
      if (plan.z.pt != t) leg.push_back(plan.z.pt);
    } else {
      leg = reconstruct_to_b(lt, i + 1, plan.z.child_idx);
    }
    std::reverse(leg.begin(), leg.end());
    append_polyline(out, leg);
  }
  out = canonicalize(std::move(out));
  RSP_CHECK_MSG(polyline_length(out) == plan.best,
                "reconstructed path does not match the computed length");
  return out;
}

}  // namespace rsp
