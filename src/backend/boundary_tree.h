#pragma once
// Backend::kBoundaryTree — sublinear-space queries over the retained §5
// recursion tree. This is the paper's actual deployment shape: instead of
// materializing the O(n^2) all-pairs tables, keep the divide-and-conquer
// recursion itself (leaf sub-scenes, per-node boundary discretizations
// B(Q), and the conquer's transfer sets) and answer each query on the fly.
//
// Query algorithm (mirrors the validated conquer, run bottom-up):
//   1. Point-locate s and t to leaves of the tree (descend by region
//      containment).
//   2. Lift a distance vector ds over B(N) from the leaf (track-graph
//      Dijkstra on the leaf sub-scene, the base case) up each ancestor N:
//      at an internal node Q with s inside child c, a B(Q) point is
//      reached either directly through c (ds_c restricted by the port's
//      row mapping) or through the separator hub — min over hub access
//      points y of c (its Mid points, plus the §6.4 escape candidates: the
//      free axis rays from s to the separator) of ds(y) + L1(y, z) +
//      reach(z, x), the exact product the conquer evaluates with Monge
//      multiplications at build time. dt lifts symmetrically from t.
//   3. d(s, t) = min over every common ancestor Q of the two leaf chains
//      of the hub term min_{y,z} ds[y] + L1(y, z) + dt[z] (the separator
//      is a monotone geodesic: L1 between two of its points inside Q),
//      plus the leaf base case when s and t share a leaf.
// Paths replay the same minimizations with argmin tracking; separator
// legs walk the retained staircase, deformed along the region boundary
// where the staircase leaves the region (§7-style containment patching).
//
// Space: leaves + transfer sets only — no level keeps its D_Q matrix, so
// the resident structure is far below the n x n wall (the ratio is
// recorded by bench_build at n = 4096). Queries cost two leaf Dijkstras
// plus O(|B| * |Mid|) work per tree level.
//
// Thread safety: immutable after construction; length()/path() allocate
// only per-call state and are safe to call concurrently (the Engine's
// batch fan-out does exactly that).

#include <memory>
#include <vector>

#include "core/dnc_builder.h"
#include "core/rayshoot.h"
#include "core/scene.h"

namespace rsp {

class BoundaryTreeSP {
 public:
  // Builds the retained tree for `scene`. `num_threads` sizes the
  // build-scoped scheduler exactly as DncOptions::num_threads (0 or 1 =
  // sequential build); queries never use it.
  explicit BoundaryTreeSP(Scene scene, size_t num_threads = 0);
  // Snapshot restore: adopt a previously built tree. The tree must belong
  // to `scene` (the snapshot loader validates structure; this constructor
  // re-checks the cheap invariants).
  BoundaryTreeSP(Scene scene, std::shared_ptr<const DncTree> tree);

  const Scene& scene() const { return scene_; }
  const DncTree& tree() const { return *tree_; }
  std::shared_ptr<const DncTree> shared_tree() const { return tree_; }
  // Build statistics (all zero for a snapshot-restored instance).
  const DncStats& build_stats() const { return stats_; }

  // Shortest L1 length / path between two free points of the scene.
  // Inputs must be pre-validated (inside the container, outside
  // obstacles) — the Engine facade does this. Thread-safe.
  Length length(const Point& s, const Point& t) const;
  std::vector<Point> path(const Point& s, const Point& t) const;

  // Resident heap footprint: scene + tree + per-node query aux.
  size_t memory_bytes() const;
  // Compression accounting for the retained port matrices: resident bytes
  // vs what the same matrices would cost stored dense (rspcli info and
  // serve STATS surface both).
  size_t port_matrix_bytes() const { return tree_->port_matrix_bytes(); }
  size_t port_matrix_dense_bytes() const {
    return tree_->port_matrix_dense_bytes();
  }

 private:
  struct Lift;
  struct HubSrc;
  struct Plan;

  void init();
  Plan make_plan(const Point& s, const Point& t, const Lift& ls,
                 const Lift& lt) const;
  const DncNode& node(uint32_t id) const { return tree_->nodes[id]; }
  std::vector<uint32_t> locate_chain(uint32_t start, const Point& p) const;
  Lift lift(const Point& p, uint32_t start, bool include_start_level) const;
  void lift_level(Lift& lf, size_t i) const;
  std::vector<HubSrc> hub_sources(const Lift& lf, size_t i) const;
  Length leaf_length(const DncNode& leaf, const Point& a,
                     const Point& b) const;
  std::vector<Point> leaf_path(const DncNode& leaf, const Point& a,
                               const Point& b) const;
  std::vector<Point> sep_geodesic(uint32_t node_id, const Point& y,
                                  const Point& z) const;
  std::vector<Point> reconstruct_to_b(const Lift& lf, size_t i,
                                      uint32_t bi) const;
  std::vector<Point> b_to_b_path(uint32_t node_id, uint32_t from_bi,
                                 uint32_t to_bi) const;

  Scene scene_;
  std::shared_ptr<const DncTree> tree_;
  DncStats stats_;
  std::unique_ptr<RayShooter> shooter_;       // full-scene, for §6.4 rays
  std::vector<Staircase> stairs_;             // per node (empty for leaves)
};

}  // namespace rsp
