#pragma once
// rsp::Engine — the unified facade over the paper's data structure.
//
// One configured engine object fronts every way this library can answer
// shortest-path queries among rectangular obstacles:
//
//   Engine eng(scene, {.backend = Backend::kAuto, .num_threads = 8});
//   Result<Length> d = eng.length(p, q);          // non-throwing
//   Result<std::vector<Length>> ds = eng.lengths(pairs);   // batch
//   Result<std::vector<Point>> path = eng.path(p, q);
//
// Design (after the handle-based style of rocSPARSE): construction picks
// and configures a backend; queries never throw across the API boundary —
// invalid inputs (point inside an obstacle, outside the container, empty
// scene) come back as StatusCode::kInvalidQuery. The engine owns one
// work-stealing scheduler (EngineOptions::num_threads; 0 = fully
// sequential) serving both the parallel all-pairs build and batch query
// fan-outs; no raw scheduler pointer crosses the public API. The scheduler
// is reentrant, so lengths()/paths() may be called concurrently from many
// user threads — fan-outs interleave on the shared workers instead of
// serializing — and with lazy_build the deferred construction runs as a
// scheduler task overlapping the batch's input validation.
//
// Backends:
//   kAllPairsSeq      — §9 sequential all-pairs build; O(1)-ish queries.
//   kAllPairsParallel — same structure, per-source builds fanned over the
//                       engine pool (the §6.3 substitution).
//   kBoundaryTree     — the retained §5 recursion tree (sublinear space: no
//                       n x n table is ever materialized); queries lift
//                       distance vectors bottom-up through the transfer
//                       sets. Slower per query than all-pairs, orders of
//                       magnitude smaller resident/snapshot footprint.
//   kDijkstraBaseline — no build; every query runs Dijkstra on the Hanan
//                       track graph (the ground-truth oracle). Slow but
//                       structure-free; used for cross-validation.
//   kAuto             — BoundaryTree above kAutoBoundaryTreeThreshold
//                       obstacles (the all-pairs tables stop being worth
//                       their quadratic memory); below it AllPairsParallel
//                       when the engine has a pool, AllPairsSeq otherwise.
//
// EngineOptions::lazy_build defers the O(n^2) all-pairs construction to
// the first query (thread-safe; concurrent first queries build once).

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/status.h"
#include "core/scene.h"

namespace rsp {

class AllPairsSP;
class BoundaryTreeSP;

enum class Backend {
  kAuto = 0,
  kAllPairsSeq,
  kAllPairsParallel,
  kDijkstraBaseline,
  kBoundaryTree,
};

// Above this many obstacles, kAuto picks kBoundaryTree over the quadratic
// all-pairs tables.
inline constexpr size_t kAutoBoundaryTreeThreshold = 512;

const char* backend_name(Backend b);
// Inverse of backend_name (accepts exactly its outputs, including "auto");
// nullopt for anything else. For CLI flag parsing.
std::optional<Backend> backend_from_name(std::string_view name);

struct EngineOptions {
  Backend backend = Backend::kAuto;
  // Width of the engine-owned scheduler (build fan-out + batch queries).
  // 0 or 1 = fully sequential. For an explicit kAllPairsParallel request
  // with num_threads == 0, the scheduler is sized to the hardware.
  size_t num_threads = 0;
  // Defer the O(n^2) all-pairs construction to the first query.
  bool lazy_build = false;
};

// Knobs for Engine::save. Aggregate-initialize at the call site:
//   eng.save(path, {});                      // monolithic v5, delta dist
//   eng.save(path, {.shards = 8});           // sharded set + manifest
//   eng.save(path, {.delta_encode = false}); // raw tables (pure zero-copy
//                                            //   open, larger file)
struct SaveOptions {
  // 0 writes one monolithic snapshot at `path`. k > 0 splits the built
  // all-pairs tables into k balanced contiguous source-row shard
  // snapshots (`path + ".shard<i>"`) plus a manifest at `path`
  // (io/manifest.h), clamped to the obstacle count so no shard is empty.
  // Shard boundaries are 4-aligned (whole obstacles: a query's candidate
  // source rows are the corners of a single obstacle, so alignment gives
  // every query exactly one owning shard — what makes
  // MountMode::kOwnedRows sound). Requires a built all-pairs backend
  // (kSnapshotMismatch otherwise — the boundary tree is not
  // row-partitionable; so is saving from a partial kOwnedRows mount,
  // which lacks most rows) and a real path (shards > 0 on the stream
  // overload is kInvalidQuery).
  size_t shards = 0;
  // Delta-encode the dist table against the L1 lower bound (several-fold
  // smaller on disk; an mmap open then decodes dist but still adopts
  // pred/pass in place). Off = raw tables, fully zero-copy on open.
  bool delta_encode = true;
};

// How Engine::open materializes the snapshot's tables.
enum class MapMode {
  kEager = 0,  // read + copy through the stream decoder (full validation)
  kMmap,       // mmap the file and adopt the bulk tables in place: replica
               //   start is one checksum pass + the derived-structure
               //   rebuild, and the OS pages tables lazily. POSIX hosts
               //   only; requires the path overload (kInvalidQuery on the
               //   stream overload).
};

// What a manifest mount materializes (plain snapshots ignore this).
enum class MountMode {
  kUnion = 0,  // every shard's rows: any query answerable (PR-8 behavior).
               //   Under MapMode::kMmap the union is served zero-copy out
               //   of the per-shard mappings (segmented rows), and
               //   memory_breakdown().mapped_bytes sums every mapping.
  kOwnedRows,  // adopt (or mmap) ONLY shard `OpenOptions::shard`'s
               //   [row_lo, row_hi) dist/pred/pass rows — ~1/k of the
               //   union's bytes. The engine records the owned range
               //   (Engine::owned_rows); a query whose source row falls
               //   outside it fails with StatusCode::kNotOwner instead of
               //   a wrong answer, which the serve layer surfaces as
               //   "ERR NOT_OWNER <row_lo> <row_hi>" and the fleet router
               //   treats as a routing fault (re-route to the true owner).
};

// Knobs for Engine::open; wraps the engine configuration the restored
// engine runs with.
struct OpenOptions {
  EngineOptions engine;
  MapMode map = MapMode::kEager;
  // Manifest mounts only: union vs owned-rows partial mount. kOwnedRows
  // requires a manifest path and a valid `shard` index (kInvalidQuery /
  // kSnapshotMismatch otherwise).
  MountMode mount = MountMode::kUnion;
  // Which manifest shard kOwnedRows adopts.
  size_t shard = 0;
};

// A batch query item: shortest path requested from s to t.
struct PointPair {
  Point s;
  Point t;
};

// Dispatch telemetry, cumulative since engine construction. The batch
// counters tick once per lengths()/paths() call that reaches the fan-out
// (i.e. after validation); the scheduler counters expose the engine-owned
// work-stealing pool's queue activity (all zero for a sequential engine).
// Reading is cheap (relaxed atomics) and safe from any thread; serve-layer
// STATS/JSON reports are built from this.
struct EngineMetrics {
  uint64_t batches = 0;         // dispatched lengths()/paths() batches
  uint64_t batch_queries = 0;   // point pairs across those batches
  uint64_t single_queries = 0;  // dispatched length()/path() calls
  uint64_t sched_tasks_executed = 0;  // tasks run by the engine scheduler
  uint64_t sched_steals = 0;          // tasks acquired by stealing
  uint64_t sched_injected = 0;        // external submissions (injection queue)
};

class Engine {
 public:
  // From a validated Scene (Scene's own constructor throws on invalid
  // input; use Create() for the non-throwing path from raw geometry).
  explicit Engine(Scene scene, EngineOptions opt = {});
  ~Engine();

  Engine(Engine&&) noexcept;
  Engine& operator=(Engine&&) noexcept;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Non-throwing construction from raw geometry: scene validation errors
  // (overlapping obstacles, obstacle outside the container, no obstacles)
  // become StatusCode::kInvalidScene.
  static Result<Engine> Create(std::vector<Rect> obstacles,
                               RectilinearPolygon container,
                               EngineOptions opt = {});
  // Same, with a bounding-box container (margin as Scene::with_bbox).
  static Result<Engine> Create(std::vector<Rect> obstacles,
                               EngineOptions opt = {});

  // Snapshot persistence (io/snapshot.h: versioned, endian-explicit,
  // checksummed binary format). save() forces a deferred build, then
  // writes the scene plus the built structure: the O(n^2) tables for the
  // all-pairs backends, the retained recursion tree for kBoundaryTree; a
  // structure-free kDijkstraBaseline engine writes a scene-only snapshot.
  // SaveOptions selects monolithic vs sharded output (.shards — the
  // sharded form writes each row slice to `path + ".shard<i>"`,
  // parallelized over the engine scheduler, then a manifest at `path`)
  // and the dist encoding (.delta_encode). The path overload writes every
  // file to a unique temp name beside its destination and renames into
  // place, manifest last — neither a failed save nor a concurrent one
  // destroys an existing good snapshot, and a failed sharded save never
  // leaves a mountable-but-wrong shard set.
  //
  // open() restores an engine *without* rebuilding: the build is skipped
  // and only cheap derived structures are reconstructed, so a loaded
  // engine serves length()/path()/batch queries (through the normal
  // scheduler path) immediately. The path overload recognizes a manifest
  // and mounts the shard union (query-for-query identical to a monolithic
  // open). OpenOptions::map selects eager decode vs mmap adoption (see
  // MapMode); OpenOptions::engine configures the restored engine. A kAuto
  // open adopts whatever structured payload the snapshot carries; an
  // explicitly requested backend whose structure the snapshot does not
  // hold (including any structured backend against a scene-only snapshot)
  // is StatusCode::kSnapshotMismatch; malformed input maps to
  // kCorruptSnapshot / kVersionMismatch and file system failures to
  // kIoError. Never throws.
  //
  // The options parameters are deliberately non-defaulted: every call
  // site states its persistence configuration (`{}` for the defaults).
  Status save(const std::string& path, const SaveOptions& opt) const;
  Status save(std::ostream& os, const SaveOptions& opt) const;
  static Result<Engine> open(const std::string& path, const OpenOptions& opt);
  static Result<Engine> open(std::istream& is, const OpenOptions& opt);

  const Scene& scene() const;
  const EngineOptions& options() const;
  Backend backend() const;  // resolved: never kAuto
  size_t num_threads() const;  // actual scheduler width (1 = sequential)

  // Whether the all-pairs structure has been constructed (always true for
  // eager engines after construction; kDijkstraBaseline never builds).
  bool built() const;
  // Force a deferred build now (no-op when already built / structure-free).
  Status warmup();

  // Shortest L1 path length between two free points. kInvalidQuery when a
  // point is inside an obstacle, outside the container, or the scene is
  // empty.
  Result<Length> length(const Point& s, const Point& t) const;

  // Shortest path polyline from s to t; its L1 length equals length(s, t).
  Result<std::vector<Point>> path(const Point& s, const Point& t) const;

  // Batch entry points: validate every pair up front (first invalid pair
  // fails the whole batch, identified by index), then fan the queries over
  // the engine pool. Results are index-aligned with `pairs`.
  Result<std::vector<Length>> lengths(std::span<const PointPair> pairs) const;
  Result<std::vector<std::vector<Point>>> paths(
      std::span<const PointPair> pairs) const;

  // Dispatch telemetry snapshot (see EngineMetrics).
  EngineMetrics metrics() const;

  // Resident bytes of the built query structure (tables, recursion tree,
  // derived aux). 0 when nothing is built yet (does not force a deferred
  // build) and for the structure-free kDijkstraBaseline backend.
  size_t memory_usage() const;

  // memory_usage plus the boundary-tree port-matrix compression split:
  // resident (compressed) bytes vs what the same matrices would cost
  // dense. Ports fields are zero for other backends and before the build;
  // never forces a deferred build. serve STATS and rspcli surface this.
  // mapped_bytes counts table bytes served from an mmap arena instead of
  // resident copies (zero for eager engines) — for an mmap-opened engine,
  // total_bytes - mapped_bytes approximates the true resident footprint.
  // owned_rows/total_rows report the partial-mount window: for a
  // MountMode::kOwnedRows engine owned_rows < total_rows and
  // total/mapped bytes cover only that window; otherwise they are equal
  // (0/0 before a build).
  struct MemoryBreakdown {
    size_t total_bytes = 0;
    size_t port_matrix_bytes = 0;
    size_t port_matrix_dense_bytes = 0;
    size_t mapped_bytes = 0;
    size_t owned_rows = 0;
    size_t total_rows = 0;
  };
  MemoryBreakdown memory_breakdown() const;

  // The source-row window this engine owns: [first, second). A full
  // engine owns [0, m); a MountMode::kOwnedRows mount owns its shard's
  // manifest range. {0, 0} when nothing is built yet.
  std::pair<size_t, size_t> owned_rows() const;

  // Escape hatch to the implementation layer (§8 chunked reporting demos,
  // benchmarks that reach for the matrix). Forces the lazy build; nullptr
  // for backends that do not materialize the all-pairs tables
  // (kDijkstraBaseline, kBoundaryTree).
  const AllPairsSP* all_pairs() const;

  // The boundary-tree structure, likewise; nullptr for other backends.
  const BoundaryTreeSP* boundary_tree() const;

 private:
  struct Impl;
  // Mounts a shard-set manifest (io/manifest.h): loads the shard files
  // MountMode selects (all of them for kUnion, exactly one for
  // kOwnedRows; mmap-adopted under MapMode::kMmap), verifies each against
  // its manifest record, and assembles the mount before any engine state
  // exists — it either serves its whole advertised table set or fails
  // with nothing constructed. A kMmap union is served zero-copy as
  // segmented per-row views into the k mappings.
  static Result<Engine> open_manifest(const std::string& path,
                                      const OpenOptions& opt);
  explicit Engine(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace rsp
