#pragma once
// Non-throwing error propagation for the public rsp::Engine API.
//
// The algorithmic layers below the facade keep their fail-fast RSP_CHECK
// discipline (an invariant violation there is a library bug), but *user*
// mistakes — a query point inside an obstacle, outside the container, an
// empty scene — are expected inputs for a service and must not unwind the
// caller. The facade therefore reports them as a Status, in the style of
// handle-based numerical libraries (cf. rocsparse_status): every public
// entry point returns Status or Result<T>, and nothing the caller can do
// makes the facade throw.

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common.h"

namespace rsp {

enum class StatusCode {
  kOk = 0,
  kInvalidQuery,      // query point blocked / outside / empty scene
  kInvalidScene,      // overlapping obstacles, obstacle outside container, ...
  kInternal,          // an RSP_CHECK fired below the facade (a library bug)
  kIoError,           // the OS said no: open/read/write on a snapshot failed
  kCorruptSnapshot,   // bad magic, truncation, checksum or table mismatch
  kVersionMismatch,   // snapshot written by an incompatible format version
  kSnapshotMismatch,  // requested backend incompatible with the payload
  kNotOwner,          // partial mount: the query needs rows this shard lacks
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidQuery: return "INVALID_QUERY";
    case StatusCode::kInvalidScene: return "INVALID_SCENE";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruptSnapshot: return "CORRUPT_SNAPSHOT";
    case StatusCode::kVersionMismatch: return "VERSION_MISMATCH";
    case StatusCode::kSnapshotMismatch: return "SNAPSHOT_MISMATCH";
    case StatusCode::kNotOwner: return "NOT_OWNER";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }
  static Status InvalidScene(std::string msg) {
    return Status(StatusCode::kInvalidScene, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status CorruptSnapshot(std::string msg) {
    return Status(StatusCode::kCorruptSnapshot, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status SnapshotMismatch(std::string msg) {
    return Status(StatusCode::kSnapshotMismatch, std::move(msg));
  }
  static Status NotOwner(std::string msg) {
    return Status(StatusCode::kNotOwner, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    if (ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

// A value or an error. Engine query entry points return Result<T>; callers
// branch on ok() and read value() (checked: value() on an error aborts via
// RSP_CHECK, the same fail-fast the rest of the library uses for misuse).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RSP_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RSP_CHECK_MSG(ok(), "Result::value() on error: " + status_.to_string());
    return *value_;
  }
  T& value() & {
    RSP_CHECK_MSG(ok(), "Result::value() on error: " + status_.to_string());
    return *value_;
  }
  // Rvalue access returns by value (moved out): `*engine.path(s, t)` on a
  // temporary Result yields an independent object instead of a reference
  // into the dying temporary (a C++20 range-for would dangle otherwise).
  T value() && {
    RSP_CHECK_MSG(ok(), "Result::value() on error: " + status_.to_string());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rsp
