#include "api/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <random>
#include <sstream>
#include <thread>

#include "backend/boundary_tree.h"
#include "baseline/dijkstra.h"
#include "core/query.h"
#include "io/manifest.h"
#include "io/snapshot.h"
#include "pram/parallel.h"
#include "pram/scheduler.h"

namespace rsp {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kAuto: return "auto";
    case Backend::kAllPairsSeq: return "all-pairs-seq";
    case Backend::kAllPairsParallel: return "all-pairs-parallel";
    case Backend::kDijkstraBaseline: return "dijkstra-baseline";
    case Backend::kBoundaryTree: return "boundary-tree";
  }
  return "unknown";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  for (Backend b : {Backend::kAuto, Backend::kAllPairsSeq,
                    Backend::kAllPairsParallel, Backend::kDijkstraBaseline,
                    Backend::kBoundaryTree}) {
    if (name == backend_name(b)) return b;
  }
  return std::nullopt;
}

namespace {

// Internal backend interface: adapters assume pre-validated inputs and may
// throw (RSP_CHECK); the facade translates anything escaping into
// StatusCode::kInternal.
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;
  virtual Length length(const Point& s, const Point& t) const = 0;
  virtual std::vector<Point> path(const Point& s, const Point& t) const = 0;
  virtual const AllPairsSP* all_pairs() const { return nullptr; }
  virtual const BoundaryTreeSP* boundary_tree() const { return nullptr; }
  // Resident bytes of the built structure (0 for structure-free backends).
  virtual size_t memory_bytes() const { return 0; }
  // Bytes of memory_bytes() served from an mmap arena instead of resident
  // copies (mmap-opened snapshots; 0 for built or eagerly loaded engines).
  virtual size_t mapped_bytes() const { return 0; }
};

// The paper's data structure (§9 build, §6.4/§8 queries). The build fans
// over `build_sched` when one is provided; queries are O(1)-ish either way.
class AllPairsBackend final : public QueryBackend {
 public:
  AllPairsBackend(const Scene& scene, Scheduler* build_sched)
      : sp_(Scene(scene), build_sched) {}
  // Snapshot restore: adopt precomputed tables, skip the build.
  AllPairsBackend(const Scene& scene, AllPairsData data)
      : sp_(Scene(scene), std::move(data)) {}

  Length length(const Point& s, const Point& t) const override {
    return sp_.length(s, t);
  }
  std::vector<Point> path(const Point& s, const Point& t) const override {
    return sp_.path(s, t);
  }
  const AllPairsSP* all_pairs() const override { return &sp_; }
  size_t memory_bytes() const override {
    const AllPairsData& d = sp_.data();
    // The dominant tables: dist (Length) + pred (i32) + pass (i8). A
    // partial (owned-rows) mount holds only its window's rows — that
    // difference is the whole point of MountMode::kOwnedRows.
    return d.rows() * d.m *
           (sizeof(Length) + sizeof(int32_t) + sizeof(int8_t));
  }
  size_t mapped_bytes() const override {
    const AllPairsData& d = sp_.data();
    // A segmented union mount spans k mappings; the load tallied their
    // bytes per shard (summing, not last-shard-wins).
    if (d.segmented()) return d.mapped_table_bytes;
    const size_t sz = d.rows() * d.m;
    size_t b = 0;
    if (d.dist.borrowed()) b += sz * sizeof(Length);
    if (d.pred_view != nullptr) b += sz * sizeof(int32_t);
    if (d.pass_view != nullptr) b += sz * sizeof(int8_t);
    return b;
  }

 private:
  AllPairsSP sp_;
};

// The retained §5 recursion tree (src/backend/boundary_tree.h): sublinear
// space, query-time bottom-up distance lifting through the transfer sets.
class BoundaryTreeBackend final : public QueryBackend {
 public:
  BoundaryTreeBackend(const Scene& scene, size_t num_threads)
      : bt_(Scene(scene), num_threads) {}
  // Snapshot restore: adopt the deserialized tree, skip the build.
  BoundaryTreeBackend(const Scene& scene, std::shared_ptr<const DncTree> tree)
      : bt_(Scene(scene), std::move(tree)) {}

  Length length(const Point& s, const Point& t) const override {
    return bt_.length(s, t);
  }
  std::vector<Point> path(const Point& s, const Point& t) const override {
    return bt_.path(s, t);
  }
  const BoundaryTreeSP* boundary_tree() const override { return &bt_; }
  size_t memory_bytes() const override { return bt_.memory_bytes(); }

 private:
  BoundaryTreeSP bt_;
};

// Structure-free baseline: every query is a fresh Dijkstra on the Hanan
// track graph (the library's ground-truth oracle). O(n^2 log n) per query.
class DijkstraBackend final : public QueryBackend {
 public:
  explicit DijkstraBackend(const Scene& scene) : scene_(scene) {}

  Length length(const Point& s, const Point& t) const override {
    return oracle_length(scene_, s, t);
  }
  std::vector<Point> path(const Point& s, const Point& t) const override {
    return oracle_path(scene_, s, t);
  }

 private:
  const Scene& scene_;
};

Backend resolve_backend(const EngineOptions& opt, size_t num_obstacles) {
  if (opt.backend != Backend::kAuto) return opt.backend;
  // Past the threshold the quadratic tables stop being worth their memory
  // (54 MB at n=512, growing as n^2): serve from the recursion tree.
  if (num_obstacles > kAutoBoundaryTreeThreshold) {
    return Backend::kBoundaryTree;
  }
  return opt.num_threads >= 2 ? Backend::kAllPairsParallel
                              : Backend::kAllPairsSeq;
}

// Unique temp name beside `path`: a failed write must not destroy an
// existing good file, and concurrent savers must not interleave into one
// temp, so the name is unique per process and per call.
std::string unique_tmp_name(const std::string& path) {
  static std::atomic<uint64_t> seq{0};
  static const uint64_t process_tag = std::random_device{}();
  std::ostringstream os;
  os << path << ".tmp." << std::hex << process_tag << '.' << std::dec
     << seq.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

// Writes `tmp` into place at `path` (replace-on-rename on every platform).
Status commit_tmp_file(const std::string& tmp, const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path +
                           "': " + ec.message());
  }
  return Status::Ok();
}

size_t resolve_sched_width(const EngineOptions& opt, Backend resolved) {
  (void)resolved;
  if (opt.num_threads >= 2) return opt.num_threads;
  // An explicit parallel-backend request with *default* threading (0) gets
  // a hardware-sized scheduler. An explicit num_threads == 1 is honored as
  // sequential — a one-thread scheduler and none execute identically.
  if (opt.num_threads == 0 && opt.backend == Backend::kAllPairsParallel) {
    return std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  return 0;
}

// The message is exactly "<row_lo> <row_hi>": the serve layer prepends
// "ERR NOT_OWNER " and ships it verbatim, so the wire form the router
// parses is fixed here.
Status not_owner_status(const NotOwnerError& e) {
  return Status::NotOwner(std::to_string(e.row_lo) + " " +
                          std::to_string(e.row_hi));
}

// Copies a segmented (union-mmap) table set into flat owned storage; the
// save paths need contiguous tables to slice and stream.
AllPairsData flatten_segmented(const AllPairsData& d) {
  AllPairsData flat;
  flat.m = d.m;
  std::vector<Length> dist(d.m * d.m);
  flat.pred.resize(d.m * d.m);
  flat.pass.resize(d.m * d.m);
  for (size_t a = 0; a < d.m; ++a) {
    std::copy(d.dist_rows[a], d.dist_rows[a] + d.m, dist.begin() + a * d.m);
    std::copy(d.pred_rows[a], d.pred_rows[a] + d.m,
              flat.pred.begin() + a * d.m);
    std::copy(d.pass_rows[a], d.pass_rows[a] + d.m,
              flat.pass.begin() + a * d.m);
  }
  flat.dist = Matrix(d.m, d.m, std::move(dist));
  return flat;
}

Status partial_save_error(const AllPairsData& d) {
  return Status::SnapshotMismatch(
      "this engine is a partial (owned-rows) mount holding source rows [" +
      std::to_string(d.row_lo) + ", " + std::to_string(d.row_hi) +
      ") only; saving needs the full tables (open the manifest with "
      "MountMode::kUnion)");
}

}  // namespace

struct Engine::Impl {
  Scene scene;
  EngineOptions opt;
  Backend resolved;
  // Engine-owned work-stealing scheduler; null = sequential. One scheduler
  // serves both the all-pairs build fan-out and batch query fan-outs, and
  // it is reentrant: batch calls may arrive concurrently from many user
  // threads (or from inside other schedulers' tasks) without serializing.
  std::unique_ptr<Scheduler> sched;

  // Dispatch telemetry (EngineMetrics). Relaxed: counters, not ordering.
  mutable std::atomic<uint64_t> batches{0};
  mutable std::atomic<uint64_t> batch_queries{0};
  mutable std::atomic<uint64_t> single_queries{0};

  mutable std::mutex build_mu;
  mutable std::unique_ptr<QueryBackend> backend;
  mutable Status build_status;             // sticky build failure
  mutable std::atomic<bool> ready{false};  // backend is constructed
  // Snapshot-restored structure, consumed by the next ensure_built()
  // instead of running the build (Engine::open sets these; there is
  // exactly one backend-construction path for built and loaded engines
  // alike). At most one is engaged, matching the resolved backend.
  mutable std::optional<AllPairsData> restored_data;
  mutable std::shared_ptr<const DncTree> restored_tree;

  Impl(Scene s, EngineOptions o) : scene(std::move(s)), opt(o) {
    resolved = resolve_backend(opt, scene.num_obstacles());
    size_t width = resolve_sched_width(opt, resolved);
    if (width >= 2) sched = std::make_unique<Scheduler>(width);
  }

  // Adopts a loaded snapshot payload into a ready-to-serve engine — the
  // one restore path shared by the eager, mmap, and stream opens.
  static Result<Engine> from_payload(SnapshotPayload p,
                                     const EngineOptions& opt);

  // Constructs the backend exactly once (double-checked); a failed build
  // is sticky and reported by every subsequent query.
  Status ensure_built() const {
    if (ready.load(std::memory_order_acquire)) return Status::Ok();
    std::lock_guard<std::mutex> lk(build_mu);
    if (ready.load(std::memory_order_relaxed)) return Status::Ok();
    if (!build_status.ok()) return build_status;
    if (scene.container().vertices().empty() || scene.num_obstacles() == 0) {
      // Nothing to build; every query is rejected by validation before the
      // (absent) backend is consulted.
      ready.store(true, std::memory_order_release);
      return Status::Ok();
    }
    try {
      if (resolved == Backend::kDijkstraBaseline) {
        backend = std::make_unique<DijkstraBackend>(scene);
      } else if (resolved == Backend::kBoundaryTree) {
        if (restored_tree) {
          backend = std::make_unique<BoundaryTreeBackend>(
              scene, std::move(restored_tree));
        } else {
          // The recursion build owns its scheduler for the build's
          // lifetime (DncOptions::num_threads); the engine pool keeps
          // serving concurrent batches meanwhile.
          backend = std::make_unique<BoundaryTreeBackend>(
              scene, sched ? sched->num_threads() : 0);
        }
      } else if (restored_data) {
        backend = std::make_unique<AllPairsBackend>(
            scene, std::move(*restored_data));
        restored_data.reset();
      } else {
        Scheduler* build_sched =
            resolved == Backend::kAllPairsParallel ? sched.get() : nullptr;
        backend = std::make_unique<AllPairsBackend>(scene, build_sched);
      }
    } catch (const std::exception& e) {
      build_status = Status::Internal(std::string("build failed: ") + e.what());
      return build_status;
    }
    ready.store(true, std::memory_order_release);
    return Status::Ok();
  }

  Status validate_point(const Point& p, const char* which) const {
    if (!scene.container().contains(p)) {
      std::ostringstream os;
      os << which << " point " << p << " is outside the container";
      return Status::InvalidQuery(os.str());
    }
    if (!scene.point_free(p)) {
      std::ostringstream os;
      os << which << " point " << p << " is inside an obstacle";
      return Status::InvalidQuery(os.str());
    }
    return Status::Ok();
  }

  Status validate_pair(const Point& s, const Point& t) const {
    if (scene.container().vertices().empty()) {
      return Status::InvalidQuery("empty scene: no container");
    }
    if (scene.num_obstacles() == 0) {
      return Status::InvalidQuery("empty scene: no obstacles");
    }
    if (Status st = validate_point(s, "source"); !st.ok()) return st;
    if (Status st = validate_point(t, "target"); !st.ok()) return st;
    return Status::Ok();
  }

  Status validate_batch(std::span<const PointPair> pairs) const {
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (Status st = validate_pair(pairs[i].s, pairs[i].t); !st.ok()) {
        std::ostringstream os;
        os << "pair " << i << ": " << st.message();
        return Status(st.code(), os.str());
      }
    }
    return Status::Ok();
  }

  // Runs fn(i) for every batch index, over the scheduler when one exists.
  // Reentrant: concurrent batch calls from different user threads (or from
  // inside scheduler tasks) interleave on the shared workers instead of
  // serializing on a lock.
  template <typename Fn>
  Status fan_out(size_t n, const Fn& fn) const {
    try {
      if (sched && n > 1) {
        parallel_for(*sched, 0, n, fn, /*grain=*/1);
      } else {
        for (size_t i = 0; i < n; ++i) fn(i);
      }
    } catch (const NotOwnerError& e) {
      // Partial mount asked for a row it lacks: the whole batch fails with
      // the owned window (never a partially-filled result), and the router
      // re-routes it intact.
      return not_owner_status(e);
    } catch (const std::exception& e) {
      return Status::Internal(e.what());
    }
    return Status::Ok();
  }

  // Batch prologue: kick the deferred build (lazy_build) off as a
  // scheduler task, then validate every pair while it runs — first-batch
  // latency is max(validate, build) instead of their sum. A validation
  // failure returns immediately without joining the build (the build is
  // never wasted: it is sticky and any later valid query needs it); a
  // valid batch synchronizes with the prefetch through ensure_built's
  // build_mu.
  Status prepare_batch(std::span<const PointPair> pairs) const {
    if (sched && opt.lazy_build && !ready.load(std::memory_order_acquire)) {
      spawn_prefetch();
    }
    if (Status vst = validate_batch(pairs); !vst.ok()) return vst;
    return ensure_built();
  }

  void spawn_prefetch() const {
    std::lock_guard<std::mutex> lk(prefetch_mu);
    if (prefetch_spawned) return;
    prefetch_spawned = true;
    prefetch.emplace(*sched);
    // Fork with no inherited PramCostScope: the join is deferred past this
    // call (to ensure_built / ~Impl), so the caller's scope may be long
    // gone by the time the build charges costs.
    PramCostScope* saved = pram_scope_current();
    pram_scope_set(nullptr);
    prefetch->run([this] { ensure_built(); });  // outcome is sticky
    pram_scope_set(saved);
  }

  // Declared last on purpose: ~Impl destroys (and thereby joins) the
  // prefetch group before any member its task touches.
  mutable std::mutex prefetch_mu;
  mutable bool prefetch_spawned = false;  // guarded by prefetch_mu
  mutable std::optional<TaskGroup> prefetch;
};

Engine::Engine(Scene scene, EngineOptions opt)
    : impl_(std::make_unique<Impl>(std::move(scene), opt)) {
  if (!opt.lazy_build) impl_->ensure_built();  // failure is sticky
}

Engine::Engine(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Engine::~Engine() = default;
Engine::Engine(Engine&&) noexcept = default;
Engine& Engine::operator=(Engine&&) noexcept = default;

Result<Engine> Engine::Create(std::vector<Rect> obstacles,
                              RectilinearPolygon container,
                              EngineOptions opt) {
  try {
    Scene scene(std::move(obstacles), std::move(container));
    return Engine(std::move(scene), opt);
  } catch (const std::exception& e) {
    return Status::InvalidScene(e.what());
  }
}

Result<Engine> Engine::Create(std::vector<Rect> obstacles, EngineOptions opt) {
  try {
    Scene scene = Scene::with_bbox(std::move(obstacles));
    return Engine(std::move(scene), opt);
  } catch (const std::exception& e) {
    return Status::InvalidScene(e.what());
  }
}

Status Engine::save(std::ostream& os, const SaveOptions& opt) const {
  if (opt.shards > 0) {
    return Status::InvalidQuery(
        "a sharded save writes multiple files and needs a real path; use "
        "save(path, {.shards = k})");
  }
  if (Status st = impl_->ensure_built(); !st.ok()) return st;
  const SnapshotSaveOptions sopt{.delta_encode = opt.delta_encode};
  if (impl_->backend) {
    if (const AllPairsSP* sp = impl_->backend->all_pairs()) {
      const AllPairsData& d = sp->data();
      if (d.partial()) return partial_save_error(d);
      if (d.segmented()) {
        // The writer streams flat tables; a segmented union mount copies
        // them out of its k mappings once (the same bytes it is writing).
        AllPairsData flat = flatten_segmented(d);
        return save_snapshot(os, impl_->scene, &flat, sopt);
      }
      return save_snapshot(os, impl_->scene, &d, sopt);
    }
    if (const BoundaryTreeSP* bt = impl_->backend->boundary_tree()) {
      return save_snapshot(os, impl_->scene, bt->tree(), sopt);
    }
  }
  return save_snapshot(os, impl_->scene, nullptr, sopt);
}

Status Engine::save(const std::string& path, const SaveOptions& opt) const {
  if (opt.shards == 0) {
    // Write-to-unique-temp-then-rename: a failed save (disk full, quota)
    // must not destroy a previous good snapshot at `path` — replicas keep
    // opening the old file until the new one is complete.
    const std::string tmp = unique_tmp_name(path);
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Status::IoError("cannot open '" + tmp + "' for writing");
    Status st = save(os, opt);
    os.close();
    if (st.ok() && !os.good()) {
      st = Status::IoError("write to '" + tmp + "' failed");
    }
    if (!st.ok()) {
      std::remove(tmp.c_str());
      return st;
    }
    return commit_tmp_file(tmp, path);
  }

  if (Status st = impl_->ensure_built(); !st.ok()) return st;
  const AllPairsSP* sp =
      impl_->backend ? impl_->backend->all_pairs() : nullptr;
  if (sp == nullptr) {
    return Status::SnapshotMismatch(
        std::string("a sharded save needs a built all-pairs backend; '") +
        backend_name(impl_->resolved) +
        "' holds no row-partitionable tables (save a monolithic snapshot "
        "instead)");
  }
  const AllPairsData& orig = sp->data();
  if (orig.partial()) return partial_save_error(orig);
  // A segmented union mount has no flat tables to slice; copy them out of
  // the k mappings once (the same bytes the shard writers stream anyway).
  std::optional<AllPairsData> flat;
  if (orig.segmented()) flat = flatten_segmented(orig);
  const AllPairsData& data = flat ? *flat : orig;
  const size_t m = data.m;
  const size_t n = impl_->scene.num_obstacles();
  // Shard boundaries are 4-aligned — whole obstacles, never a split corner
  // group. Every query reduces to source rows of one obstacle's corners
  // (§6.4's backward ray hits a single obstacle; the two candidate rows
  // are its corners), so obstacle-aligned rows give each query exactly one
  // owning shard. MountMode::kOwnedRows + NOT_OWNER re-routing is sound
  // only because of this alignment. Clamp so no shard is empty.
  const size_t k = std::min(opt.shards, n);
  const std::string file_base =
      std::filesystem::path(path).filename().string();
  ShardManifest man;
  man.num_obstacles = n;
  man.m = m;
  for (size_t i = 0; i < k; ++i) {
    ShardEntry e;
    e.file = file_base + ".shard" + std::to_string(i);
    e.kind = SnapshotPayloadKind::kAllPairsShard;
    e.row_lo = 4 * (n * i / k);
    e.row_hi = 4 * (n * (i + 1) / k);
    man.shards.push_back(std::move(e));
  }
  // Routing slabs: load-bearing under kOwnedRows fleets — the router sends
  // a request to route_by_x(source.x) first and recovers misses through
  // NOT_OWNER re-routing. When the shards' obstacle corner x-extents are
  // disjoint (x-sorted scenes) the slab edges sit at the gaps, so routing
  // a vertex source is exact; overlapping extents fall back to an even
  // split of the container — still a total, deterministic, gap-free map,
  // just with more re-routes.
  const Rect& bb = impl_->scene.container().bbox();
  const auto& verts = impl_->scene.obstacle_vertices();
  std::vector<Coord> min_x(k), max_x(k);
  for (size_t i = 0; i < k; ++i) {
    Coord lo = verts[man.shards[i].row_lo].x;
    Coord hi = lo;
    for (size_t r = man.shards[i].row_lo; r < man.shards[i].row_hi; ++r) {
      lo = std::min(lo, verts[r].x);
      hi = std::max(hi, verts[r].x);
    }
    min_x[i] = lo;
    max_x[i] = hi;
  }
  bool disjoint = true;
  for (size_t i = 0; i + 1 < k; ++i) {
    if (max_x[i] >= min_x[i + 1]) disjoint = false;
  }
  const long double xspan = static_cast<long double>(bb.xmax) -
                            static_cast<long double>(bb.xmin) + 1;
  for (size_t i = 0; i < k; ++i) {
    ShardEntry& e = man.shards[i];
    if (disjoint) {
      // Boundary at the next shard's leftmost corner: x == boundary routes
      // to the right shard (half-open slabs), so every owned corner routes
      // home.
      e.x_lo = i == 0 ? bb.xmin : min_x[i];
      e.x_hi = i + 1 == k ? bb.xmax + 1 : min_x[i + 1];
    } else {
      e.x_lo = i == 0 ? bb.xmin
                      : bb.xmin + static_cast<Coord>(
                                      xspan * static_cast<long double>(i) /
                                      static_cast<long double>(k));
      e.x_hi = i + 1 == k
                   ? bb.xmax + 1
                   : bb.xmin + static_cast<Coord>(
                                   xspan * static_cast<long double>(i + 1) /
                                   static_cast<long double>(k));
    }
  }

  // The per-source build makes row slices independent, so the k shard
  // writers fan over the engine scheduler without copying any table. The
  // view-aware accessors keep this working for an mmap-opened engine whose
  // tables live in a mapping rather than owned vectors.
  const Length* dist0 = data.dist.data();
  const int32_t* pred0 = data.pred_data();
  const int8_t* pass0 = data.pass_data();
  std::vector<Status> shard_st(k, Status::Ok());
  std::vector<uint64_t> checksums(k, 0);
  Status fan = impl_->fan_out(k, [&](size_t i) {
    const ShardEntry& e = man.shards[i];
    AllPairsShardView v;
    v.m = m;
    v.row_lo = e.row_lo;
    v.row_hi = e.row_hi;
    v.dist = dist0 + e.row_lo * m;
    v.pred = pred0 + e.row_lo * m;
    v.pass = pass0 + e.row_lo * m;
    const std::string shard_path = shard_file_path(path, e);
    const std::string tmp = unique_tmp_name(shard_path);
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      shard_st[i] = Status::IoError("cannot open '" + tmp + "' for writing");
      return;
    }
    Status st = save_snapshot(os, impl_->scene, v, &checksums[i],
                              SnapshotSaveOptions{.delta_encode =
                                                      opt.delta_encode});
    os.close();
    if (st.ok() && !os.good()) {
      st = Status::IoError("write to '" + tmp + "' failed");
    }
    if (!st.ok()) {
      std::remove(tmp.c_str());
      shard_st[i] = st;
      return;
    }
    shard_st[i] = commit_tmp_file(tmp, shard_path);
  });
  if (!fan.ok()) return fan;
  for (size_t i = 0; i < k; ++i) {
    if (shard_st[i].ok()) continue;
    // Remove the shards that did land: a partial set must not shadow an
    // older complete one under the same names.
    for (size_t j = 0; j < k; ++j) {
      if (shard_st[j].ok()) {
        std::remove(shard_file_path(path, man.shards[j]).c_str());
      }
    }
    return shard_st[i];
  }
  for (size_t i = 0; i < k; ++i) man.shards[i].checksum = checksums[i];

  // Manifest last, via its own temp: a reader that wins a race against
  // this save sees either the old manifest or the new complete set, never
  // a manifest naming files that do not exist yet.
  const std::string tmp = unique_tmp_name(path);
  if (Status st = save_manifest(tmp, man); !st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  return commit_tmp_file(tmp, path);
}

Result<Engine> Engine::Impl::from_payload(SnapshotPayload p,
                                          const EngineOptions& opt) {
  if (p.kind == SnapshotPayloadKind::kAllPairsShard) {
    return Status::SnapshotMismatch(
        "snapshot holds a single all-pairs row shard; mount the shard set "
        "through its manifest (open the manifest path instead)");
  }
  try {
    auto impl = std::make_unique<Impl>(std::move(p.scene), opt);
    const bool empty = impl->scene.container().vertices().empty() ||
                       impl->scene.num_obstacles() == 0;
    if (!empty && impl->resolved != Backend::kDijkstraBaseline) {
      // A kAuto open adopts whatever structure the snapshot carries — the
      // point of a snapshot is to serve what was built, not to rebuild
      // something else because the size threshold says so.
      if (opt.backend == Backend::kAuto &&
          p.kind == SnapshotPayloadKind::kBoundaryTree) {
        impl->resolved = Backend::kBoundaryTree;
      } else if (opt.backend == Backend::kAuto &&
                 p.kind == SnapshotPayloadKind::kAllPairs) {
        impl->resolved = impl->sched ? Backend::kAllPairsParallel
                                     : Backend::kAllPairsSeq;
      }
      const SnapshotPayloadKind need =
          impl->resolved == Backend::kBoundaryTree
              ? SnapshotPayloadKind::kBoundaryTree
              : SnapshotPayloadKind::kAllPairs;
      if (p.kind != need) {
        return Status::SnapshotMismatch(
            std::string("snapshot holds a ") + payload_kind_name(p.kind) +
            " payload but backend '" + backend_name(impl->resolved) +
            "' needs " + payload_kind_name(need) +
            "; rebuild from the scene or open with a matching backend");
      }
    }
    // Hand the structure to the one backend-construction path
    // (ensure_built): empty scenes, the Dijkstra branch, and failure
    // stickiness behave identically for built and loaded engines. The
    // structure-free backend never consumes it — don't keep the payload
    // resident.
    if (!empty && impl->resolved != Backend::kDijkstraBaseline) {
      impl->restored_data = std::move(p.data);
      impl->restored_tree = std::move(p.tree);
    }
    if (Status st = impl->ensure_built(); !st.ok()) return st;
    return Engine(std::move(impl));
  } catch (const std::exception& e) {
    return Status::Internal(std::string("snapshot restore failed: ") +
                            e.what());
  }
}

Result<Engine> Engine::open(std::istream& is, const OpenOptions& opt) {
  if (opt.map == MapMode::kMmap) {
    return Status::InvalidQuery(
        "MapMode::kMmap needs a real file to map; use the path overload");
  }
  Result<SnapshotPayload> payload = load_snapshot(is);
  if (!payload.ok()) return payload.status();
  return Impl::from_payload(std::move(*payload), opt.engine);
}

Result<Engine> Engine::open(const std::string& path, const OpenOptions& opt) {
  if (is_manifest_file(path)) return open_manifest(path, opt);
  if (opt.map == MapMode::kMmap) {
    Result<SnapshotPayload> payload = load_snapshot_mapped(path);
    if (!payload.ok()) return payload.status();
    return Impl::from_payload(std::move(*payload), opt.engine);
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IoError("cannot open '" + path + "' for reading");
  return open(is, opt);
}

Result<Engine> Engine::open_manifest(const std::string& path,
                                     const OpenOptions& opt) {
  if (opt.engine.backend == Backend::kBoundaryTree ||
      opt.engine.backend == Backend::kDijkstraBaseline) {
    return Status::SnapshotMismatch(
        std::string("a shard-set manifest holds all-pairs tables but "
                    "backend '") +
        backend_name(opt.engine.backend) +
        "' was requested; open with an all-pairs backend (or kAuto)");
  }
  Result<ShardManifest> rman = load_manifest(path);
  if (!rman.ok()) return rman.status();
  const ShardManifest& man = *rman;
  const size_t m = man.m;

  const bool owned = opt.mount == MountMode::kOwnedRows;
  if (owned && opt.shard >= man.shards.size()) {
    std::ostringstream os;
    os << "MountMode::kOwnedRows shard index " << opt.shard
       << " is out of range: the manifest names " << man.shards.size()
       << " shard(s)";
    return Status::InvalidQuery(os.str());
  }
  // A zero-copy union over k mmapped shard files is necessarily segmented:
  // no single flat view can span k distinct mappings.
  const bool segmented = !owned && opt.map == MapMode::kMmap;

  // Assemble the complete table set *before* any engine state exists: a
  // mount with a bad shard anywhere fails with nothing constructed — never
  // a partially-filled table serving wrong answers for the missing rows.
  // (An owned mount's tables are intentionally partial; its accessors
  // refuse the missing rows instead of answering them.)
  std::optional<Scene> scene;
  AllPairsData data;
  data.m = m;
  std::vector<Length> dist;
  std::vector<int32_t> pred;
  std::vector<int8_t> pass;
  if (segmented) {
    data.dist_rows.resize(m);
    data.pred_rows.resize(m);
    data.pass_rows.resize(m);
  } else if (!owned) {
    dist.resize(m * m);
    pred.resize(m * m);
    pass.resize(m * m);
  }
  for (size_t i = 0; i < man.shards.size(); ++i) {
    if (owned && i != opt.shard) continue;
    const ShardEntry& e = man.shards[i];
    auto prefix = [&](const std::string& msg) {
      std::ostringstream os;
      os << "manifest shard " << i << " ('" << e.file << "'): " << msg;
      return os.str();
    };
    const std::string spath = shard_file_path(path, e);
    // Under kMmap each shard file is mapped and checksummed once, and the
    // union rows below copy straight out of the mappings — no intermediate
    // owned decode of the O(m^2/k) slices.
    Result<SnapshotPayload> rp = [&]() -> Result<SnapshotPayload> {
      if (opt.map == MapMode::kMmap) return load_snapshot_mapped(spath);
      std::ifstream is(spath, std::ios::binary);
      if (!is) {
        return Status::IoError("cannot open '" + spath + "' for reading");
      }
      return load_snapshot(is);
    }();
    if (!rp.ok()) return Status(rp.status().code(), prefix(rp.status().message()));
    SnapshotPayload& p = *rp;
    if (p.kind != SnapshotPayloadKind::kAllPairsShard || !p.shard) {
      return Status::CorruptSnapshot(
          prefix(std::string("file holds a '") + payload_kind_name(p.kind) +
                 "' payload, not the all-pairs shard the manifest records"));
    }
    // The file is internally consistent (its own footer verified); this
    // catches a *swapped or regenerated* shard whose content no longer
    // matches what the manifest was written against.
    if (p.payload_checksum != e.checksum) {
      return Status::CorruptSnapshot(
          prefix("payload checksum does not match the manifest record "
                 "(shard file replaced after the manifest was written?)"));
    }
    AllPairsShardData& sh = *p.shard;
    if (sh.m != m || sh.row_lo != e.row_lo || sh.row_hi != e.row_hi) {
      std::ostringstream os;
      os << "shard table geometry m=" << sh.m << " rows [" << sh.row_lo
         << ", " << sh.row_hi << ") disagrees with the manifest record [";
      os << e.row_lo << ", " << e.row_hi << ") of m=" << m;
      return Status::CorruptSnapshot(prefix(os.str()));
    }
    // Every shard must carry the same scene: rows from different builds
    // must never be merged into one table.
    if (!scene) {
      scene = std::move(p.scene);
    } else if (scene->obstacles() != p.scene.obstacles() ||
               scene->container().vertices() !=
                   p.scene.container().vertices()) {
      return Status::CorruptSnapshot(
          prefix("shard scene differs from the other shards' scene"));
    }
    if (owned) {
      // Adopt exactly this shard's rows: ~1/k of the union's bytes,
      // resident or mapped. The accessors rebase on row_lo and refuse
      // rows outside [row_lo, row_hi) with NotOwnerError.
      data.row_lo = sh.row_lo;
      data.row_hi = sh.row_hi;
      const size_t rows = sh.rows();
      if (sh.dist_view != nullptr) {
        data.dist = Matrix(rows, m, sh.dist_view, sh.arena);
      } else {
        data.dist = Matrix(rows, m, std::move(sh.dist));
      }
      if (sh.pred_view != nullptr) {
        data.pred_view = sh.pred_view;
      } else {
        data.pred = std::move(sh.pred);
      }
      if (sh.pass_view != nullptr) {
        data.pass_view = sh.pass_view;
      } else {
        data.pass = std::move(sh.pass);
      }
      data.arena = sh.arena;
    } else if (segmented) {
      // Zero-copy union: point each source row into this shard's tables
      // (mapping-backed, or the owned decode of a delta dist) and keep
      // the whole shard payload alive as the rows' arena.
      auto holder = std::make_shared<AllPairsShardData>(std::move(sh));
      const Length* d0 = holder->dist_data();
      const int32_t* p0 = holder->pred_data();
      const int8_t* q0 = holder->pass_data();
      for (size_t a = holder->row_lo; a < holder->row_hi; ++a) {
        const size_t off = (a - holder->row_lo) * m;
        data.dist_rows[a] = d0 + off;
        data.pred_rows[a] = p0 + off;
        data.pass_rows[a] = q0 + off;
      }
      const size_t sz = holder->rows() * m;
      if (holder->dist_view != nullptr) {
        data.mapped_table_bytes += sz * sizeof(Length);
      }
      if (holder->pred_view != nullptr) {
        data.mapped_table_bytes += sz * sizeof(int32_t);
      }
      if (holder->pass_view != nullptr) {
        data.mapped_table_bytes += sz * sizeof(int8_t);
      }
      data.arenas.push_back(std::move(holder));
    } else {
      const size_t cnt = sh.rows() * m;
      std::copy(sh.dist_data(), sh.dist_data() + cnt,
                dist.begin() + sh.row_lo * m);
      std::copy(sh.pred_data(), sh.pred_data() + cnt,
                pred.begin() + sh.row_lo * m);
      std::copy(sh.pass_data(), sh.pass_data() + cnt,
                pass.begin() + sh.row_lo * m);
    }
  }

  if (!owned && !segmented) {
    data.dist = Matrix(m, m, std::move(dist));
    data.pred = std::move(pred);
    data.pass = std::move(pass);
  }
  try {
    auto impl = std::make_unique<Impl>(std::move(*scene), opt.engine);
    if (opt.engine.backend == Backend::kAuto) {
      // A mounted shard set serves what was built: all-pairs, never the
      // size-threshold boundary-tree pick.
      impl->resolved = impl->sched ? Backend::kAllPairsParallel
                                   : Backend::kAllPairsSeq;
    }
    impl->restored_data = std::move(data);
    if (Status st = impl->ensure_built(); !st.ok()) return st;
    return Engine(std::move(impl));
  } catch (const std::exception& e) {
    return Status::Internal(std::string("shard-set restore failed: ") +
                            e.what());
  }
}

const Scene& Engine::scene() const { return impl_->scene; }
const EngineOptions& Engine::options() const { return impl_->opt; }
Backend Engine::backend() const { return impl_->resolved; }

size_t Engine::num_threads() const {
  return impl_->sched ? impl_->sched->num_threads() : 1;
}

bool Engine::built() const {
  return impl_->ready.load(std::memory_order_acquire) &&
         impl_->backend != nullptr &&
         impl_->resolved != Backend::kDijkstraBaseline;
}

Status Engine::warmup() { return impl_->ensure_built(); }

Result<Length> Engine::length(const Point& s, const Point& t) const {
  if (Status st = impl_->validate_pair(s, t); !st.ok()) return st;
  if (Status st = impl_->ensure_built(); !st.ok()) return st;
  impl_->single_queries.fetch_add(1, std::memory_order_relaxed);
  try {
    return impl_->backend->length(s, t);
  } catch (const NotOwnerError& e) {
    return not_owner_status(e);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

Result<std::vector<Point>> Engine::path(const Point& s, const Point& t) const {
  if (Status st = impl_->validate_pair(s, t); !st.ok()) return st;
  if (Status st = impl_->ensure_built(); !st.ok()) return st;
  impl_->single_queries.fetch_add(1, std::memory_order_relaxed);
  try {
    return impl_->backend->path(s, t);
  } catch (const NotOwnerError& e) {
    return not_owner_status(e);
  } catch (const std::exception& e) {
    return Status::Internal(e.what());
  }
}

Result<std::vector<Length>> Engine::lengths(
    std::span<const PointPair> pairs) const {
  if (Status st = impl_->prepare_batch(pairs); !st.ok()) return st;
  impl_->batches.fetch_add(1, std::memory_order_relaxed);
  impl_->batch_queries.fetch_add(pairs.size(), std::memory_order_relaxed);
  std::vector<Length> out(pairs.size());
  Status st = impl_->fan_out(pairs.size(), [&](size_t i) {
    out[i] = impl_->backend->length(pairs[i].s, pairs[i].t);
  });
  if (!st.ok()) return st;
  return out;
}

Result<std::vector<std::vector<Point>>> Engine::paths(
    std::span<const PointPair> pairs) const {
  if (Status st = impl_->prepare_batch(pairs); !st.ok()) return st;
  impl_->batches.fetch_add(1, std::memory_order_relaxed);
  impl_->batch_queries.fetch_add(pairs.size(), std::memory_order_relaxed);
  std::vector<std::vector<Point>> out(pairs.size());
  Status st = impl_->fan_out(pairs.size(), [&](size_t i) {
    out[i] = impl_->backend->path(pairs[i].s, pairs[i].t);
  });
  if (!st.ok()) return st;
  return out;
}

EngineMetrics Engine::metrics() const {
  EngineMetrics m;
  m.batches = impl_->batches.load(std::memory_order_relaxed);
  m.batch_queries = impl_->batch_queries.load(std::memory_order_relaxed);
  m.single_queries = impl_->single_queries.load(std::memory_order_relaxed);
  if (impl_->sched) {
    SchedulerStats s = impl_->sched->stats();
    m.sched_tasks_executed = s.tasks_executed;
    m.sched_steals = s.steals;
    m.sched_injected = s.injected;
  }
  return m;
}

size_t Engine::memory_usage() const {
  if (!impl_->ready.load(std::memory_order_acquire) || !impl_->backend) {
    return 0;
  }
  return impl_->backend->memory_bytes();
}

Engine::MemoryBreakdown Engine::memory_breakdown() const {
  MemoryBreakdown mb;
  if (!impl_->ready.load(std::memory_order_acquire) || !impl_->backend) {
    return mb;
  }
  mb.total_bytes = impl_->backend->memory_bytes();
  mb.mapped_bytes = impl_->backend->mapped_bytes();
  if (const BoundaryTreeSP* bt = impl_->backend->boundary_tree()) {
    mb.port_matrix_bytes = bt->port_matrix_bytes();
    mb.port_matrix_dense_bytes = bt->port_matrix_dense_bytes();
  }
  const std::pair<size_t, size_t> window = owned_rows();
  mb.owned_rows = window.second - window.first;
  mb.total_rows = 4 * impl_->scene.num_obstacles();
  return mb;
}

std::pair<size_t, size_t> Engine::owned_rows() const {
  if (!impl_->ready.load(std::memory_order_acquire) || !impl_->backend) {
    return {0, 0};
  }
  if (const AllPairsSP* sp = impl_->backend->all_pairs()) {
    const AllPairsData& d = sp->data();
    if (d.partial()) return {d.row_lo, d.row_hi};
    return {0, d.m};
  }
  // Structure-free and boundary-tree backends answer any source.
  return {0, 4 * impl_->scene.num_obstacles()};
}

const AllPairsSP* Engine::all_pairs() const {
  if (!impl_->ensure_built().ok()) return nullptr;
  return impl_->backend ? impl_->backend->all_pairs() : nullptr;
}

const BoundaryTreeSP* Engine::boundary_tree() const {
  if (!impl_->ensure_built().ok()) return nullptr;
  return impl_->backend ? impl_->backend->boundary_tree() : nullptr;
}

}  // namespace rsp
